type t = {
  eng : Dsim.Engine.t;
  thread : Thread_id.t;
  send : Ccs_msg.payload -> unit;
  on_suppress : unit -> unit;
  input : Ccs_msg.payload Queue.t; (* my_input_buffer *)
  arrived : Dsim.Sync.Condition.t;
  mutable round : int; (* my_round_number *)
  mutable highest_enqueued : int; (* duplicate detection (msg_seq_num) *)
  mutable blocked : bool;
  mutable pending : Ccs_msg.payload option;
}

let create eng ~thread ~send ?(on_suppress = fun () -> ()) () =
  {
    eng;
    thread;
    send;
    on_suppress;
    input = Queue.create ();
    arrived = Dsim.Sync.Condition.create ();
    round = 0;
    highest_enqueued = 0;
    blocked = false;
    pending = None;
  }

let thread t = t.thread
let round t = t.round
let buffered t = Queue.length t.input

let peek_round t =
  Option.map (fun (p : Ccs_msg.payload) -> p.round) (Queue.peek_opt t.input)

let recv t (p : Ccs_msg.payload) =
  if not (Thread_id.equal p.thread t.thread) then
    invalid_arg "Ccs_handler.recv: wrong thread";
  (* Duplicate detection: the first message delivered for a round wins;
     later messages for the same (or an older) round are discarded. *)
  if p.round > t.highest_enqueued then begin
    t.highest_enqueued <- p.round;
    let was_empty = Queue.is_empty t.input in
    Queue.push p t.input;
    if was_empty then Dsim.Sync.Condition.signal t.eng t.arrived
  end

let pending t = if t.blocked then t.pending else None

let get_grp_clock_time t ~proposal ~call =
  t.round <- t.round + 1;
  let payload = { Ccs_msg.thread = t.thread; round = t.round; proposal; call } in
  t.pending <- Some payload;
  if Queue.is_empty t.input then t.send payload else t.on_suppress ();
  t.blocked <- true;
  while Queue.is_empty t.input do
    Dsim.Sync.Condition.wait t.arrived
  done;
  t.blocked <- false;
  t.pending <- None;
  let winner = Queue.pop t.input in
  (* Rounds of a thread are strictly sequential and totally ordered, so the
     first buffered message always belongs to the current round. *)
  assert (winner.round = t.round);
  winner

let round_settled t round = t.highest_enqueued >= round

let advance_to t ~round =
  if t.blocked then
    invalid_arg "Ccs_handler.advance_to: thread is blocked mid-round";
  if round < t.round then
    invalid_arg "Ccs_handler.advance_to: target behind current round";
  t.round <- round;
  if t.highest_enqueued < round then t.highest_enqueued <- round;
  let rec drop () =
    match Queue.peek_opt t.input with
    | Some (p : Ccs_msg.payload) when p.round <= round ->
        ignore (Queue.pop t.input : Ccs_msg.payload);
        drop ()
    | _ -> ()
  in
  drop ()
