type t = int

let recovery = 0

let of_int i =
  if i < 0 then invalid_arg "Thread_id.of_int: negative";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp ppf t = if t = 0 then Format.fprintf ppf "t<rec>" else Format.fprintf ppf "t%d" t
