(** Drift-compensation strategies for the group clock (§3.3).

    Without compensation the group clock drifts from real time: the round
    winner tends to be the replica that proposed earliest, so the group
    clock advances slower than real time (paper Figure 6(c)).  The paper
    sketches two remedies, both implemented here. *)

type t =
  | No_compensation
  | Mean_delay of Dsim.Time.Span.t
      (** "increase the value of my_clock_offset by a mean delay each time
          that value is calculated to compensate for that delay"; the span
          should approximate the mean communication + processing delay *)
  | Anchored of { source : Clock.External_source.t; gain : float }
      (** "a small proportion of the difference between the 'real time' and
          the proposed consistent clock is added to the proposed consistent
          clock"; [gain] is that proportion, in (0, 1] *)

val adjust_proposal : t -> Dsim.Time.t -> Dsim.Time.t
(** Applied to the local clock value before it is proposed for the group
    clock (start of a round). *)

val adjust_offset : t -> Dsim.Time.Span.t -> Dsim.Time.Span.t
(** Applied to the freshly computed clock offset (end of a round). *)

val pp : Format.formatter -> t -> unit
