lib/core/drift.mli: Clock Dsim Format
