lib/core/service.mli: Call_type Clock Drift Dsim Gcs Netsim Thread_id
