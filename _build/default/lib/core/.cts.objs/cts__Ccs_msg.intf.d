lib/core/ccs_msg.mli: Call_type Dsim Format Gcs Thread_id
