lib/core/call_type.mli: Dsim Format
