lib/core/ccs_handler.mli: Call_type Ccs_msg Dsim Thread_id
