lib/core/drift.ml: Clock Dsim Format
