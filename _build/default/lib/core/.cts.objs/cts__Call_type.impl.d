lib/core/call_type.ml: Dsim Format
