lib/core/service.ml: Call_type Ccs_handler Ccs_msg Clock Drift Dsim Gcs Hashtbl List Logs Netsim Queue Thread_id
