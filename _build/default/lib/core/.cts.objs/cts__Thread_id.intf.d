lib/core/thread_id.mli: Format
