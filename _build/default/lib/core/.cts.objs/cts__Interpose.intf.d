lib/core/interpose.mli: Dsim Service Thread_id
