lib/core/interpose.ml: Call_type Dsim Fun Hashtbl Service Thread_id
