lib/core/ccs_msg.ml: Call_type Dsim Format Gcs Thread_id
