lib/core/thread_id.ml: Format Int
