lib/core/ccs_handler.ml: Ccs_msg Dsim Option Queue Thread_id
