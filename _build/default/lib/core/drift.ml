type t =
  | No_compensation
  | Mean_delay of Dsim.Time.Span.t
  | Anchored of { source : Clock.External_source.t; gain : float }

let adjust_proposal t proposal =
  match t with
  | No_compensation | Mean_delay _ -> proposal
  | Anchored { source; gain } ->
      let reference = Clock.External_source.query source in
      let error = Dsim.Time.diff reference proposal in
      Dsim.Time.add proposal (Dsim.Time.Span.scale gain error)

let adjust_offset t offset =
  match t with
  | No_compensation | Anchored _ -> offset
  | Mean_delay d -> Dsim.Time.Span.add offset d

let pp ppf = function
  | No_compensation -> Format.pp_print_string ppf "none"
  | Mean_delay d -> Format.fprintf ppf "mean-delay(%a)" Dsim.Time.Span.pp d
  | Anchored { gain; _ } -> Format.fprintf ppf "anchored(gain=%g)" gain
