type payload = {
  thread : Thread_id.t;
  round : int;
  proposal : Dsim.Time.t;
  call : Call_type.t;
}

type Gcs.Msg.body += Ccs of payload

let msg_type = "CCS"
let conn_id = 0

let make ~group payload =
  Gcs.Msg.make ~msg_type ~src_grp:group ~dst_grp:group ~conn_id
    ~msg_seq:payload.round (Ccs payload)

let of_msg (msg : Gcs.Msg.t) =
  match msg.body with Ccs p -> Some p | _ -> None

let pp ppf p =
  Format.fprintf ppf "CCS(%a r%d %a %a)" Thread_id.pp p.thread p.round
    Dsim.Time.pp p.proposal Call_type.pp p.call
