(** Clock-related system calls.

    The paper interposes on the operating system's clock entry points and
    gives each "a unique type identifier so that the consistent clock
    synchronization algorithm can recognize and distinguish them" (§4.1);
    every CCS message carries the identifier.  Each call has the granularity
    of its POSIX counterpart. *)

type t =
  | Gettimeofday  (** microsecond granularity *)
  | Time  (** second granularity *)
  | Ftime  (** millisecond granularity *)

val type_id : t -> int
(** The unique identifier carried in CCS messages. *)

val granularity : t -> Dsim.Time.Span.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
