(** Logical thread identifiers.

    The paper requires that "all threads that perform clock-related
    operations are created ... in the same order at different replicas"
    (§2); a logical thread id names the same thread across all replicas of a
    group.  Id 0 is reserved for the special consistent-clock-
    synchronization round run during state transfer (§3.2). *)

type t

val recovery : t
(** The reserved id for the special round during state transfer. *)

val of_int : int -> t
(** Application threads use ids >= 1.  Raises [Invalid_argument] for
    negative ids. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
