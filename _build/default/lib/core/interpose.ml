exception No_context

(* fiber id -> (service, thread); bindings are installed and removed by
   [with_context] in a strict stack discipline per fiber *)
let contexts : (int, Service.t * Thread_id.t) Hashtbl.t = Hashtbl.create 16

let fiber_id () =
  match Dsim.Fiber.current_id () with
  | Some id -> id
  | None -> raise No_context

let context () =
  match Dsim.Fiber.current_id () with
  | None -> None
  | Some id -> Hashtbl.find_opt contexts id

let with_context service ~thread f =
  let id = fiber_id () in
  let prev = Hashtbl.find_opt contexts id in
  Hashtbl.replace contexts id (service, thread);
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some binding -> Hashtbl.replace contexts id binding
      | None -> Hashtbl.remove contexts id)
    f

let call kind =
  let id = fiber_id () in
  match Hashtbl.find_opt contexts id with
  | None -> raise No_context
  | Some (service, thread) -> Service.clock_read service ~thread ~call:kind

let gettimeofday () = call Call_type.Gettimeofday
let time () = call Call_type.Time
let ftime () = call Call_type.Ftime
