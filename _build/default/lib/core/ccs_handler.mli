(** Per-thread consistent clock synchronization handler (§3.1-3.2).

    One handler exists per logical thread; it owns the thread's input buffer
    of received CCS messages, the thread's round counter, duplicate
    detection, and the blocking [get_grp_clock_time] operation of Figure 2.

    Within a thread all clock-related operations are sequential, so rounds
    are numbered 1, 2, 3, ... per thread, and the first CCS message
    delivered for a round determines the group clock for that round. *)

type t

val create :
  Dsim.Engine.t ->
  thread:Thread_id.t ->
  send:(Ccs_msg.payload -> unit) ->
  ?on_suppress:(unit -> unit) ->
  unit ->
  t
(** [send] multicasts a CCS message to the group (invoked only when the
    handler must compete for a round).  [on_suppress] fires when a round
    opens with the winner's message already buffered, so no send is needed
    (the paper's §4.3 duplicate suppression). *)

val thread : t -> Thread_id.t

val round : t -> int
(** Rounds completed or in progress (0 initially). *)

val get_grp_clock_time :
  t -> proposal:Dsim.Time.t -> call:Call_type.t -> Ccs_msg.payload
(** Figure 2, lines 9-17: open the next round; if no CCS message for it has
    been received yet, multicast our proposal; block the calling fiber until
    the round's first message is delivered; return it (the winner's value is
    the group clock for the round).  Must run inside a fiber. *)

val recv : t -> Ccs_msg.payload -> unit
(** Figure 3, lines 5-11: duplicate detection on the round number; fresh
    messages are appended to the input buffer and a blocked thread, if any,
    is awakened. *)

val buffered : t -> int
(** Messages queued but not yet consumed (a slow replica lags behind). *)

val pending : t -> Ccs_msg.payload option
(** While the thread is blocked inside {!get_grp_clock_time}, the payload
    it proposed (or would have proposed) for the in-progress round.  Used
    by a promoted primary to re-send the round's CCS message. *)

val peek_round : t -> int option
(** Round number of the first buffered message, if any. *)

val round_settled : t -> int -> bool
(** [round_settled t r]: a CCS message for round [r] has already been
    delivered (enqueued or consumed), so sending our own proposal for that
    round would only produce a duplicate. *)

val advance_to : t -> round:int -> unit
(** Fast-forward to [round]: drop buffered messages for rounds <= [round]
    and start counting from there.  Used when a checkpoint that already
    covers those rounds is applied (passive-replication log truncation and
    new-replica state transfer).  Raises [Invalid_argument] if the thread
    is blocked mid-round or the target is behind the current round. *)
