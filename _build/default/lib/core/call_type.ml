type t = Gettimeofday | Time | Ftime

let type_id = function Gettimeofday -> 1 | Time -> 2 | Ftime -> 3

let granularity = function
  | Gettimeofday -> Dsim.Time.Span.of_us 1
  | Time -> Dsim.Time.Span.of_sec 1
  | Ftime -> Dsim.Time.Span.of_ms 1

let equal a b = type_id a = type_id b

let pp ppf = function
  | Gettimeofday -> Format.pp_print_string ppf "gettimeofday"
  | Time -> Format.pp_print_string ppf "time"
  | Ftime -> Format.pp_print_string ppf "ftime"
