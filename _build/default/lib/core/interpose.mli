(** Library interpositioning of the clock-related system calls (§4.1).

    The paper captures `gettimeofday()`, `time()` and `ftime()` with
    library interpositioning so the application needs no code changes.  The
    simulation equivalent: the replication infrastructure installs a
    context (which consistent time service, which logical thread) for the
    fiber that runs application code, and application code calls the usual
    entry points with no arguments:

    {[
      let handle ~op ... =
        let now = Cts.Interpose.gettimeofday () in
        ...
    ]}

    Contexts are fiber-local (keyed by {!Dsim.Fiber.current_id}), so
    replicas of different groups hosted on the same simulated node cannot
    leak clocks into each other. *)

exception No_context
(** Raised by the clock calls when no context is installed for the calling
    fiber — the simulation's equivalent of running without the
    interposition library preloaded. *)

val with_context :
  Service.t -> thread:Thread_id.t -> (unit -> 'a) -> 'a
(** [with_context service ~thread f] runs [f] with the clock calls bound to
    [service]/[thread].  Nests; the previous binding is restored on exit.
    Must be called from inside a fiber. *)

val gettimeofday : unit -> Dsim.Time.t
(** Microsecond granularity; blocks for the CCS round like the underlying
    {!Service.gettimeofday}. *)

val time : unit -> Dsim.Time.t
(** Second granularity. *)

val ftime : unit -> Dsim.Time.t
(** Millisecond granularity. *)

val context : unit -> (Service.t * Thread_id.t) option
(** The binding of the calling fiber, if any. *)
