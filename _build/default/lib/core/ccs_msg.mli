(** The Consistent Clock Synchronization (CCS) control message (§3.1).

    The payload carries the sending thread identifier and the local clock
    value the sender proposes for the group clock — the sum of its physical
    hardware clock value and its clock offset — plus the call-type
    identifier of §4.1.  The CCS round number travels in the message
    header's [msg_seq_num] field, as in the paper, and is duplicated here
    for convenience. *)

type payload = {
  thread : Thread_id.t;  (** sending thread identifier *)
  round : int;  (** CCS round number for that thread *)
  proposal : Dsim.Time.t;  (** local clock value proposed for the group *)
  call : Call_type.t;
}

type Gcs.Msg.body += Ccs of payload

val msg_type : string
(** The header [msg_type] of CCS messages, ["CCS"]. *)

val conn_id : int
(** CCS messages of a group travel on a reserved connection. *)

val make : group:Gcs.Group_id.t -> payload -> Gcs.Msg.t
(** Wrap a payload into a group-addressed message (source and destination
    group identifiers are the same for a CCS message, §3.1). *)

val of_msg : Gcs.Msg.t -> payload option
val pp : Format.formatter -> payload -> unit
