(** Replicated applications used by the examples, tests and benchmarks. *)

type recorder = {
  on_round :
    round:int ->
    real:Dsim.Time.t ->
    pc:Dsim.Time.t ->
    gc:Dsim.Time.t ->
    offset:Dsim.Time.Span.t ->
    unit;
}
(** Per-replica instrumentation callback invoked after each clock round of
    the ["seq"] operation ([real] = simulation time when the round ended,
    [pc] = physical clock at the start of the round, [gc] = group clock
    returned, [offset] = clock offset after the round). *)

val null_recorder : recorder

val time_server :
  Cluster.t ->
  node:int ->
  ?use_cts:bool ->
  ?recorder:recorder ->
  unit ->
  Cts.Service.t ->
  Repl.Replica.app
(** The paper's evaluation server.  Operations:

    - ["gettimeofday"] — returns the clock reading in nanoseconds (group
      clock when [use_cts], the replica's raw physical clock otherwise —
      the paper's "without consistent time service" baseline);
    - ["time"] — second-granularity reading;
    - ["uid"] — a unique identifier seeded by the clock reading (the
      introduction's motivating use case): ["<reading_ns>.<counter>"];
    - ["seq"] with argument ["<count>:<d1,d2,...>"] — §4.2 experiment (2):
      perform [count] clock-related operations separated by a random delay
      drawn from the given microsecond choices (plus small scheduling
      noise), reporting each round to the recorder; returns the last group
      clock value;
    - anything else — echoes the argument. *)
