lib/scenario/experiments.mli: Array Dsim Repl Stats Totem
