lib/scenario/apps.mli: Cluster Cts Dsim Repl
