lib/scenario/apps.ml: Array Clock Cluster Cts Dsim List Printf Repl String
