lib/scenario/cluster.ml: Array Clock Dsim Gcs List Netsim Totem
