lib/scenario/report.ml: Array Dsim Experiments Format List Stats
