lib/scenario/cluster.mli: Clock Dsim Gcs Netsim Totem
