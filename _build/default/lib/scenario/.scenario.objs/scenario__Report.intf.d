lib/scenario/report.mli: Experiments Format
