lib/scenario/experiments.ml: Apps Array Clock Cluster Cts Dsim Fun Gcs List Netsim Option Printf Repl Rpc Stats String Totem
