type t = {
  eng : Dsim.Engine.t;
  rng : Dsim.Rng.t;
  max_skew : Dsim.Time.Span.t;
}

let create eng ~max_skew =
  if Dsim.Time.Span.is_negative max_skew then
    invalid_arg "External_source.create: negative max_skew";
  { eng; rng = Dsim.Rng.split (Dsim.Engine.rng eng); max_skew }

let query t =
  let now = Dsim.Engine.now t.eng in
  let bound = Dsim.Time.Span.to_ns t.max_skew in
  if bound = 0 then now
  else
    let skew = Dsim.Rng.int_range t.rng (-bound) bound in
    Dsim.Time.add now (Dsim.Time.Span.of_ns skew)

let max_skew t = t.max_skew
