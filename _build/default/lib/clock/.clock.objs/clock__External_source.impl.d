lib/clock/external_source.ml: Dsim
