lib/clock/hwclock.ml: Dsim
