lib/clock/external_source.mli: Dsim
