lib/clock/hwclock.mli: Dsim
