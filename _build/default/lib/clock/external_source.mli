(** External reference time source (NTP / GPS).

    The paper's §3.3 "more aggressive" drift-compensation strategy consults a
    source that "might have a transient skew from real time but has no
    drift".  We model exactly that: each query returns real simulated time
    plus a bounded, randomly varying skew. *)

type t

val create :
  Dsim.Engine.t -> max_skew:Dsim.Time.Span.t -> t
(** Queries return real time perturbed by a skew drawn uniformly from
    [\[-max_skew, +max_skew\]], re-drawn on every query (transient skew). *)

val query : t -> Dsim.Time.t

val max_skew : t -> Dsim.Time.Span.t
