(** Ordinary least-squares line fit.

    Used to estimate the drift rate of the group clock relative to real time
    for the paper's Figure 6(c) and the drift-compensation ablation. *)

type fit = { slope : float; intercept : float; r2 : float }

val fit : (float * float) list -> fit
(** [fit points] fits [y = slope * x + intercept].  Raises
    [Invalid_argument] with fewer than 2 points or when all x are equal. *)

val pp_fit : Format.formatter -> fit -> unit
