type t = {
  mutable samples : float array;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sorted : bool;
}

let create () =
  {
    samples = Array.make 64 0.;
    n = 0;
    mean = 0.;
    m2 = 0.;
    min = infinity;
    max = neg_infinity;
    sorted = true;
  }

let add t x =
  if t.n = Array.length t.samples then begin
    let bigger = Array.make (2 * t.n) 0. in
    Array.blit t.samples 0 bigger 0 t.n;
    t.samples <- bigger
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- false;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let percentile t p =
  if t.n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  ensure_sorted t;
  let rank = p /. 100. *. float_of_int (t.n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  let frac = rank -. float_of_int lo in
  (t.samples.(lo) *. (1. -. frac)) +. (t.samples.(hi) *. frac)

let median t = percentile t 50.

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(no samples)"
  else
    Format.fprintf ppf
      "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f" t.n t.mean
      (stddev t) t.min (median t) (percentile t 99.) t.max
