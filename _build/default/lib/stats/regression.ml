type fit = { slope : float; intercept : float; r2 : float }

let fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.fit: need at least 2 points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) ** 2.)) 0. points in
  let syy = List.fold_left (fun a (_, y) -> a +. ((y -. my) ** 2.)) 0. points in
  let sxy =
    List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points
  in
  if sxx = 0. then invalid_arg "Regression.fit: all x equal";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0. then 1. else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2 }

let pp_fit ppf f =
  Format.fprintf ppf "slope=%.6g intercept=%.6g r2=%.4f" f.slope f.intercept
    f.r2
