(** Online summary statistics (Welford) and exact percentiles.

    The accumulator keeps every sample, so percentiles are exact; the mean
    and variance are additionally maintained online so they stay available
    without a sort. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float

val stddev : t -> float
(** Sample standard deviation (n-1 denominator); [0.] for n < 2. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] when empty or [p] is out of
    range. *)

val median : t -> float
val pp : Format.formatter -> t -> unit
