type reason = Loss | Partitioned | No_port

type 'a event =
  | Sent of { src : Node_id.t; dst : Node_id.t option; payload : 'a }
  | Delivered of { src : Node_id.t; dst : Node_id.t; payload : 'a }
  | Dropped of {
      src : Node_id.t;
      dst : Node_id.t;
      payload : 'a;
      reason : reason;
    }

type 'a entry = { at : Dsim.Time.t; ev : 'a event }

type 'a t = {
  capacity : int;
  buf : 'a entry option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { capacity; buf = Array.make capacity None; next = 0; total = 0 }

let record t ~at ev =
  t.buf.(t.next) <- Some { at; ev };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let length t = min t.total t.capacity

let entries t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let total_recorded t = t.total

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

let pp_reason ppf = function
  | Loss -> Format.pp_print_string ppf "loss"
  | Partitioned -> Format.pp_print_string ppf "partitioned"
  | No_port -> Format.pp_print_string ppf "no-port"

let pp pp_payload ppf t =
  List.iter
    (fun { at; ev } ->
      match ev with
      | Sent { src; dst = Some dst; payload } ->
          Format.fprintf ppf "%a %a -> %a: %a@." Dsim.Time.pp at Node_id.pp src
            Node_id.pp dst pp_payload payload
      | Sent { src; dst = None; payload } ->
          Format.fprintf ppf "%a %a -> *: %a@." Dsim.Time.pp at Node_id.pp src
            pp_payload payload
      | Delivered { src; dst; payload } ->
          Format.fprintf ppf "%a %a => %a: %a@." Dsim.Time.pp at Node_id.pp src
            Node_id.pp dst pp_payload payload
      | Dropped { src; dst; payload; reason } ->
          Format.fprintf ppf "%a %a -x %a (%a): %a@." Dsim.Time.pp at
            Node_id.pp src Node_id.pp dst pp_reason reason pp_payload payload)
    (entries t)
