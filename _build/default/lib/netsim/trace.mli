(** Bounded packet traces.

    A trace subscribes to a network's event stream and keeps the last
    [capacity] events with their simulated timestamps — the tool for
    post-mortem debugging of protocol runs and for tests that assert on
    traffic patterns. *)

type reason = Loss | Partitioned | No_port

type 'a event =
  | Sent of { src : Node_id.t; dst : Node_id.t option; payload : 'a }
      (** [dst = None] for a broadcast *)
  | Delivered of { src : Node_id.t; dst : Node_id.t; payload : 'a }
  | Dropped of {
      src : Node_id.t;
      dst : Node_id.t;
      payload : 'a;
      reason : reason;
    }

type 'a entry = { at : Dsim.Time.t; ev : 'a event }
type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity: 4096 events. *)

val record : 'a t -> at:Dsim.Time.t -> 'a event -> unit
val entries : 'a t -> 'a entry list
(** Oldest first; at most [capacity]. *)

val length : 'a t -> int
val total_recorded : 'a t -> int
(** Including events that have been evicted from the buffer. *)

val clear : 'a t -> unit

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
