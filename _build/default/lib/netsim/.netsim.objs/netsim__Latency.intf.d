lib/netsim/latency.mli: Dsim
