lib/netsim/trace.ml: Array Dsim Format List Node_id
