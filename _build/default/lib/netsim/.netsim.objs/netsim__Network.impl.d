lib/netsim/network.ml: Dsim Format Hashtbl Latency List Node_id Option Trace
