lib/netsim/node_id.ml: Format Int Map Set
