lib/netsim/network.mli: Dsim Latency Node_id Trace
