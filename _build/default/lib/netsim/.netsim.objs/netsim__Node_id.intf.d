lib/netsim/node_id.mli: Format Map Set
