lib/netsim/latency.ml: Dsim List
