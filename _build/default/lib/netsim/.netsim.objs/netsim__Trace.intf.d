lib/netsim/trace.mli: Dsim Format Node_id
