type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.fprintf ppf "n%d" t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
