(** Node identifiers.

    Small integers naming the simulated hosts ([n0], [n1], ... in the
    paper's testbed description). *)

type t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
