type delivery = Agreed | Safe

type t = {
  delivery : delivery;
  token_hold : Dsim.Time.Span.t;
  per_msg_cost : Dsim.Time.Span.t;
  max_msgs_per_visit : int;
  window : int;
  token_loss_timeout : Dsim.Time.Span.t;
  token_retransmit : Dsim.Time.Span.t;
  join_retransmit : Dsim.Time.Span.t;
  consensus_timeout : Dsim.Time.Span.t;
  commit_timeout : Dsim.Time.Span.t;
  recovery_retry : Dsim.Time.Span.t;
  recovery_timeout : Dsim.Time.Span.t;
  presence_interval : Dsim.Time.Span.t;
}

let default =
  {
    delivery = Agreed;
    token_hold = Dsim.Time.Span.of_us 25;
    per_msg_cost = Dsim.Time.Span.of_us 4;
    max_msgs_per_visit = 20;
    window = 80;
    token_loss_timeout = Dsim.Time.Span.of_ms 3;
    token_retransmit = Dsim.Time.Span.of_us 800;
    join_retransmit = Dsim.Time.Span.of_ms 1;
    consensus_timeout = Dsim.Time.Span.of_ms 4;
    commit_timeout = Dsim.Time.Span.of_ms 4;
    recovery_retry = Dsim.Time.Span.of_ms 1;
    recovery_timeout = Dsim.Time.Span.of_ms 8;
    presence_interval = Dsim.Time.Span.of_ms 10;
  }
