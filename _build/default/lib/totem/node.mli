(** The Totem single-ring protocol engine (one instance per node).

    Provides reliable, totally-ordered ("agreed") delivery of multicast
    messages with ring membership: a token rotates around a logical ring of
    the live nodes; only the token holder broadcasts, assigning consecutive
    sequence numbers from the token; gaps are repaired through the token's
    retransmission-request list.  Membership changes (crash, join, network
    partition, remerge) run a gather/commit consensus on the new ring
    followed by a recovery exchange that floods undelivered old-ring
    messages among the old ring's surviving members, preserving agreed
    delivery across the view change.  On a partition each component forms
    its own ring; the upper layer applies the primary-component rule.

    Simplifications relative to Amir et al. [1] (documented in DESIGN.md):
    agreed rather than safe delivery, and the recovery exchange floods raw
    old-ring messages instead of re-sequencing them on the new ring. *)

type 'a t

type 'a event =
  | Deliver of {
      ring : Ring_id.t;
      seq : int;
      sender : Netsim.Node_id.t;
      payload : 'a;
    }
      (** A message in the agreed total order.  All nodes that deliver
          messages of a given ring deliver the same subsequence, in
          sequence-number order. *)
  | View of { ring : Ring_id.t; members : Netsim.Node_id.t list }
      (** A new ring was installed; all old-ring messages that will ever be
          delivered here were delivered before this event. *)
  | Blocked
      (** The node left the operational state (membership change in
          progress); multicasts are queued until the next [View]. *)

type stats = {
  tokens_seen : int;
  msgs_sent : int;  (** regular messages broadcast (own, not retransmits) *)
  retransmits : int;
  views_installed : int;
  delivered : int;
}

val create :
  Dsim.Engine.t ->
  'a Wire.t Netsim.Network.t ->
  me:Netsim.Node_id.t ->
  ?config:Config.t ->
  handler:('a event -> unit) ->
  unit ->
  'a t
(** Attaches to the network.  The node is inert until {!start}. *)

val start : 'a t -> unit
(** Begin the membership protocol (broadcast Join).  The first [View]
    event announces the initial ring. *)

val multicast : ?unless:(unit -> bool) -> 'a t -> 'a -> unit
(** Queue a payload for totally-ordered broadcast at the next token visit.
    If [unless] is given, it is evaluated exactly once, when the token
    arrives and the message is about to be broadcast; returning [true]
    discards the message instead (the paper's token-level duplicate
    suppression for CCS messages).  Raises [Invalid_argument] after
    {!crash}. *)

val crash : 'a t -> unit
(** Fail-stop: detach from the network and ignore everything thereafter.
    Idempotent. *)

val me : 'a t -> Netsim.Node_id.t
val ring : 'a t -> Ring_id.t option
val members : 'a t -> Netsim.Node_id.t list
val is_operational : 'a t -> bool
val pending : 'a t -> int
(** Multicasts queued but not yet broadcast. *)

val stats : 'a t -> stats

val on_token : 'a t -> (Wire.token -> unit) -> unit
(** Instrumentation hook invoked on every accepted token visit (used by the
    token-rotation calibration bench). *)
