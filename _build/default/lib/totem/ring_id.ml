type t = { rep : Netsim.Node_id.t; gen : int }

let make ~rep ~gen = { rep; gen }

let compare a b =
  match Int.compare a.gen b.gen with
  | 0 -> Netsim.Node_id.compare a.rep b.rep
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "ring(%a,g%d)" Netsim.Node_id.pp t.rep t.gen

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
