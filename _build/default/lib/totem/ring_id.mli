(** Ring identifiers.

    A Totem ring is identified by its representative (the lowest-id member,
    which also launches the token) and a generation number that increases
    across membership changes, so every ring ever formed has a distinct
    identity. *)

type t = { rep : Netsim.Node_id.t; gen : int }

val make : rep:Netsim.Node_id.t -> gen:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
