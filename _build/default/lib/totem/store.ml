type 'a t = {
  tbl : (int, 'a Wire.regular) Hashtbl.t;
  mutable aru : int;
  mutable delivered : int;
  mutable high : int;
  mutable floor : int; (* GCed up to here *)
}

let create () = { tbl = Hashtbl.create 64; aru = 0; delivered = 0; high = 0; floor = 0 }

let has t seq = seq <= t.floor || Hashtbl.mem t.tbl seq

let add t (msg : 'a Wire.regular) =
  if has t msg.seq then false
  else begin
    Hashtbl.replace t.tbl msg.seq msg;
    if msg.seq > t.high then t.high <- msg.seq;
    while Hashtbl.mem t.tbl (t.aru + 1) || t.aru + 1 <= t.floor do
      t.aru <- t.aru + 1
    done;
    true
  end

let find t seq = Hashtbl.find_opt t.tbl seq
let aru t = t.aru
let delivered t = t.delivered

let set_delivered t seq =
  if seq < t.delivered then invalid_arg "Store.set_delivered: going backwards";
  t.delivered <- seq

let next_to_deliver t = find t (t.delivered + 1)

let missing_up_to t hi =
  let rec collect s acc =
    if s > hi then List.rev acc
    else collect (s + 1) (if has t s then acc else s :: acc)
  in
  collect (t.aru + 1) []

let held_in t ~lo ~hi =
  let rec collect s acc =
    if s > hi then List.rev acc
    else collect (s + 1) (if Hashtbl.mem t.tbl s then s :: acc else acc)
  in
  collect (max lo 1) []

let high_seq t = t.high

let gc t ~upto =
  if upto > t.floor then begin
    for s = t.floor + 1 to upto do
      Hashtbl.remove t.tbl s
    done;
    t.floor <- upto;
    if t.aru < upto then t.aru <- upto
  end
