(** Totem protocol timers and limits.

    Defaults are calibrated for the simulated testbed (4-node ring, hop
    latency ≈ 26 µs wire + 25 µs processing, rotation ≈ 204 µs): generous
    enough that membership never churns on a healthy ring, tight enough that
    fault detection completes within a few milliseconds. *)

(** Delivery guarantee: [Agreed] hands a message up as soon as every
    earlier message has been received locally (what the consistent time
    service needs); [Safe] additionally waits until the token shows that
    every ring member has received it (two-rotation stability), trading one
    extra rotation of latency for uniform delivery. *)
type delivery = Agreed | Safe

type t = {
  delivery : delivery;
  token_hold : Dsim.Time.Span.t;
      (** processing time per token visit before forwarding *)
  per_msg_cost : Dsim.Time.Span.t;
      (** additional hold time per message broadcast or retransmitted *)
  max_msgs_per_visit : int;
      (** flow control: new broadcasts allowed per token visit *)
  window : int;
      (** flow control: max messages on the ring per full rotation *)
  token_loss_timeout : Dsim.Time.Span.t;
      (** no token for this long while operational => membership change *)
  token_retransmit : Dsim.Time.Span.t;
      (** retransmit a forwarded token if it has not come back *)
  join_retransmit : Dsim.Time.Span.t;
      (** re-flood Join while gathering *)
  consensus_timeout : Dsim.Time.Span.t;
      (** give up on silent candidates after this long in gather *)
  commit_timeout : Dsim.Time.Span.t;
      (** waiting for the representative's Commit *)
  recovery_retry : Dsim.Time.Span.t;
      (** re-flood offers / requests while recovering *)
  recovery_timeout : Dsim.Time.Span.t;
      (** abort recovery and re-gather after this long *)
  presence_interval : Dsim.Time.Span.t;
      (** period of the representative's presence beacon, which lets healed
          partitions remerge even when idle *)
}

val default : t
