(** Per-ring message store.

    Keeps the regular messages a node has received (or itself broadcast) on
    one ring, tracks the contiguously-received prefix ([aru]) and the
    delivered prefix, and answers the retransmission and recovery queries
    the protocol needs. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> 'a Wire.regular -> bool
(** [add t msg] stores the message; [false] if seq was already present
    (duplicate).  Messages below the GC floor are also reported as
    duplicates. *)

val has : 'a t -> int -> bool
val find : 'a t -> int -> 'a Wire.regular option

val aru : 'a t -> int
(** Largest [s] such that every message with seq in [1..s] has been
    received (0 when nothing contiguous). *)

val delivered : 'a t -> int
(** Highest sequence number delivered to the upper layer. *)

val set_delivered : 'a t -> int -> unit

val next_to_deliver : 'a t -> 'a Wire.regular option
(** The message with seq [delivered + 1], if present. *)

val missing_up_to : 'a t -> int -> int list
(** Sequence numbers in [aru+1 .. hi] not present, ascending. *)

val held_in : 'a t -> lo:int -> hi:int -> int list
(** Sequence numbers present in [lo..hi], ascending. *)

val high_seq : 'a t -> int
(** Highest sequence number present (0 when empty). *)

val gc : 'a t -> upto:int -> unit
(** Drop messages with seq <= [upto]; they are known stable everywhere. *)
