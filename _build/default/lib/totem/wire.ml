type 'a regular = {
  ring : Ring_id.t;
  seq : int;
  sender : Netsim.Node_id.t;
  payload : 'a;
}

type token = {
  ring : Ring_id.t;
  mutable token_seq : int;
  mutable seq : int;
  mutable aru : int;
  mutable aru_id : Netsim.Node_id.t option;
  mutable rtr : int list;
  mutable fcc : int;
}

type old_ring_info = {
  old_ring : Ring_id.t option;
  high_seq : int;
  old_aru : int;
}

type join = {
  j_sender : Netsim.Node_id.t;
  proc_set : Netsim.Node_id.Set.t;
  fail_set : Netsim.Node_id.Set.t;
  j_old : old_ring_info;
  max_gen : int;
}

type commit = {
  new_ring : Ring_id.t;
  members : Netsim.Node_id.t list;
  member_old : (Netsim.Node_id.t * old_ring_info) list;
  recover : (Ring_id.t * (int * int)) list;
}

type 'a t =
  | Regular of 'a regular
  | Token of token
  | Join of join
  | Commit of commit
  | Recovery_offer of {
      o_sender : Netsim.Node_id.t;
      new_ring : Ring_id.t;
      o_ring : Ring_id.t;
      held : int list;
    }
  | Recovery_request of {
      r_sender : Netsim.Node_id.t;
      new_ring : Ring_id.t;
      r_ring : Ring_id.t;
      wanted : int list;
    }
  | Recovery_done of {
      d_sender : Netsim.Node_id.t;
      new_ring : Ring_id.t;
      nudge : bool;
    }
  | Presence of { p_sender : Netsim.Node_id.t; p_ring : Ring_id.t }

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Netsim.Node_id.pp)
    (Netsim.Node_id.Set.elements s)

let pp ppf = function
  | Regular r ->
      Format.fprintf ppf "regular %a #%d from %a" Ring_id.pp r.ring r.seq
        Netsim.Node_id.pp r.sender
  | Token t ->
      Format.fprintf ppf "token %a ts=%d seq=%d aru=%d rtr=[%a]" Ring_id.pp
        t.ring t.token_seq t.seq t.aru
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ';')
           Format.pp_print_int)
        t.rtr
  | Join j ->
      Format.fprintf ppf "join from %a proc=%a fail=%a" Netsim.Node_id.pp
        j.j_sender pp_set j.proc_set pp_set j.fail_set
  | Commit c ->
      Format.fprintf ppf "commit %a members=[%a]" Ring_id.pp c.new_ring
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Netsim.Node_id.pp)
        c.members
  | Recovery_offer { o_sender; o_ring; held; _ } ->
      Format.fprintf ppf "recovery-offer from %a for %a (%d held)"
        Netsim.Node_id.pp o_sender Ring_id.pp o_ring (List.length held)
  | Recovery_request { r_sender; r_ring; wanted; _ } ->
      Format.fprintf ppf "recovery-request from %a for %a (%d wanted)"
        Netsim.Node_id.pp r_sender Ring_id.pp r_ring (List.length wanted)
  | Recovery_done { d_sender; nudge; _ } ->
      Format.fprintf ppf "recovery-done%s from %a"
        (if nudge then " (nudge)" else "")
        Netsim.Node_id.pp d_sender
  | Presence { p_sender; p_ring } ->
      Format.fprintf ppf "presence from %a on %a" Netsim.Node_id.pp p_sender
        Ring_id.pp p_ring

let copy_token t =
  {
    ring = t.ring;
    token_seq = t.token_seq;
    seq = t.seq;
    aru = t.aru;
    aru_id = t.aru_id;
    rtr = t.rtr;
    fcc = t.fcc;
  }
