(** Totem wire messages.

    All protocol traffic is carried over the {!Netsim.Network} as values of
    ['a t] where ['a] is the upper layer's opaque payload type. *)

type 'a regular = {
  ring : Ring_id.t;
  seq : int;  (** position in the ring's total order, starting at 1 *)
  sender : Netsim.Node_id.t;
  payload : 'a;
}

type token = {
  ring : Ring_id.t;
  mutable token_seq : int;
      (** incremented on every forward; receivers discard stale tokens *)
  mutable seq : int;  (** highest sequence number broadcast on the ring *)
  mutable aru : int;  (** all-received-up-to *)
  mutable aru_id : Netsim.Node_id.t option;  (** who last lowered [aru] *)
  mutable rtr : int list;  (** outstanding retransmission requests *)
  mutable fcc : int;
      (** messages broadcast during the last rotation (flow control) *)
}

(** A member's view of the ring it sat on before the membership change,
    carried in [Join]/[Commit] so undelivered messages can be recovered. *)
type old_ring_info = {
  old_ring : Ring_id.t option;  (** [None] for a freshly started node *)
  high_seq : int;  (** highest sequence number it holds on that ring *)
  old_aru : int;  (** its all-received-up-to on that ring *)
}

type join = {
  j_sender : Netsim.Node_id.t;
  proc_set : Netsim.Node_id.Set.t;  (** candidate members, incl. sender *)
  fail_set : Netsim.Node_id.Set.t;  (** nodes the sender has given up on *)
  j_old : old_ring_info;
  max_gen : int;  (** highest ring generation the sender has seen *)
}

type commit = {
  new_ring : Ring_id.t;
  members : Netsim.Node_id.t list;  (** sorted by id *)
  member_old : (Netsim.Node_id.t * old_ring_info) list;
  recover : (Ring_id.t * (int * int)) list;
      (** per old ring: [(lo, hi)] sequence range to recover *)
}

type 'a t =
  | Regular of 'a regular
  | Token of token
  | Join of join
  | Commit of commit
  | Recovery_offer of {
      o_sender : Netsim.Node_id.t;
      new_ring : Ring_id.t;
      o_ring : Ring_id.t;
      held : int list;  (** seqs of [o_ring] the sender holds in range *)
    }
  | Recovery_request of {
      r_sender : Netsim.Node_id.t;
      new_ring : Ring_id.t;
      r_ring : Ring_id.t;
      wanted : int list;
    }
  | Recovery_done of {
      d_sender : Netsim.Node_id.t;
      new_ring : Ring_id.t;
      nudge : bool;
          (** [true] when re-announced by an already-operational node to
              help a straggler; operational nodes never respond to nudges
              (prevents echo storms between operational nodes) *)
    }
  | Presence of { p_sender : Netsim.Node_id.t; p_ring : Ring_id.t }
      (** Low-rate beacon broadcast by the ring representative so that
          healed partitions notice each other and remerge even when idle
          (foreign regular traffic triggers the same remerge faster). *)

val pp : Format.formatter -> 'a t -> unit
(** One-line rendering of the protocol fields (payloads elided), for traces
    and logs. *)

val copy_token : token -> token
(** Tokens are mutated in place by the holder; forwarding sends a copy so a
    retransmitted token is not retroactively modified. *)
