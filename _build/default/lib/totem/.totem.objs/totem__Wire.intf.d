lib/totem/wire.mli: Format Netsim Ring_id
