lib/totem/ring_id.ml: Format Int Map Netsim
