lib/totem/wire.ml: Format List Netsim Ring_id
