lib/totem/node.ml: Config Dsim Hashtbl Int List Logs Netsim Option Queue Ring_id Stdlib Store Wire
