lib/totem/ring_id.mli: Format Map Netsim
