lib/totem/config.ml: Dsim
