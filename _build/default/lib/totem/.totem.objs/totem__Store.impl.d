lib/totem/store.ml: Hashtbl List Wire
