lib/totem/config.mli: Dsim
