lib/totem/store.mli: Wire
