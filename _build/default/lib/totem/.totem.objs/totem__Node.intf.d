lib/totem/node.mli: Config Dsim Netsim Ring_id Wire
