type t = int

let of_int i =
  if i < 0 then invalid_arg "Group_id.of_int: negative";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.fprintf ppf "g%d" t

module Map = Map.Make (Int)
