(** Process-group identifiers (the paper's [src_grp_id] / [dst_grp_id]). *)

type t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
