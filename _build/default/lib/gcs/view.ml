type t = {
  group : Group_id.t;
  members : (Netsim.Node_id.t * int) list;
  primary : bool;
}

let members_nodes t = List.map fst t.members

let rank_of t node =
  List.find_map
    (fun (n, r) -> if Netsim.Node_id.equal n node then Some r else None)
    t.members

let size t = List.length t.members

let pp ppf t =
  Format.fprintf ppf "view(%a)[%a]%s" Group_id.pp t.group
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       (fun ppf (n, r) -> Format.fprintf ppf "%a#%d" Netsim.Node_id.pp n r))
    t.members
    (if t.primary then "" else " (non-primary)")
