(** Application messages carried over the group communication system.

    Every message carries the paper's common fault-tolerant protocol header
    (§3.1): message type, source and destination group, connection
    identifier and sequence number.  [(src_grp, dst_grp, conn_id)] names a
    connection; [msg_seq] names a message within it; together they form the
    message identifier used for duplicate detection.

    The body is an extensible variant: each upper layer (RPC, the consistent
    time service, the replication infrastructure) declares its own
    constructors, so no serialization is needed inside the simulation. *)

type body = ..

type header = {
  msg_type : string;  (** e.g. ["REQUEST"], ["REPLY"], ["CCS"] *)
  src_grp : Group_id.t;
  dst_grp : Group_id.t;
  conn_id : int;
  msg_seq : int;
}

type t = { header : header; body : body }

type id = { i_src : Group_id.t; i_dst : Group_id.t; i_conn : int; i_seq : int }
(** The message identifier (header §3.1). *)

val make :
  msg_type:string ->
  src_grp:Group_id.t ->
  dst_grp:Group_id.t ->
  conn_id:int ->
  msg_seq:int ->
  body ->
  t

val id : t -> id
val pp_header : Format.formatter -> header -> unit
