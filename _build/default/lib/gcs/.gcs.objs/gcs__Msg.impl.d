lib/gcs/msg.ml: Format Group_id
