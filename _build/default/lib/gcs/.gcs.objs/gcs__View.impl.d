lib/gcs/view.ml: Format Group_id List Netsim
