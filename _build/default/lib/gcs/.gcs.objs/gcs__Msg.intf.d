lib/gcs/msg.mli: Format Group_id
