lib/gcs/endpoint.ml: Dsim Format Group_id Hashtbl Lazy List Logs Msg Netsim Option Totem View
