lib/gcs/view.mli: Format Group_id Netsim
