lib/gcs/group_id.ml: Format Int Map
