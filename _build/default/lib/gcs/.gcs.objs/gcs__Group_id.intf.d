lib/gcs/group_id.mli: Format Map
