lib/gcs/endpoint.mli: Dsim Group_id Msg Netsim Totem View
