type body = ..

type header = {
  msg_type : string;
  src_grp : Group_id.t;
  dst_grp : Group_id.t;
  conn_id : int;
  msg_seq : int;
}

type t = { header : header; body : body }

type id = { i_src : Group_id.t; i_dst : Group_id.t; i_conn : int; i_seq : int }

let make ~msg_type ~src_grp ~dst_grp ~conn_id ~msg_seq body =
  { header = { msg_type; src_grp; dst_grp; conn_id; msg_seq }; body }

let id t =
  {
    i_src = t.header.src_grp;
    i_dst = t.header.dst_grp;
    i_conn = t.header.conn_id;
    i_seq = t.header.msg_seq;
  }

let pp_header ppf h =
  Format.fprintf ppf "%s %a->%a conn=%d seq=%d" h.msg_type Group_id.pp
    h.src_grp Group_id.pp h.dst_grp h.conn_id h.msg_seq
