(** Group membership views.

    A view lists the group's members in join order, so the member at rank 0
    is the primary under the primary/backup replication styles.  [primary]
    is the primary-*component* flag: whether this node's network component
    contains a majority of the last primary component (paper §2: "only the
    primary component survives a network partition"). *)

type t = {
  group : Group_id.t;
  members : (Netsim.Node_id.t * int) list;
      (** [(node, rank)] in join order; rank 0 first *)
  primary : bool;
}

val members_nodes : t -> Netsim.Node_id.t list
(** Nodes in rank order. *)

val rank_of : t -> Netsim.Node_id.t -> int option
val size : t -> int
val pp : Format.formatter -> t -> unit
