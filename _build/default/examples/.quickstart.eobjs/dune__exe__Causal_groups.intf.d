examples/causal_groups.mli:
