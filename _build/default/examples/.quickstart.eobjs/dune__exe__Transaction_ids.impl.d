examples/transaction_ids.ml: Array Clock Cts Dsim Format Gcs List Netsim Printf Repl Rpc Scenario
