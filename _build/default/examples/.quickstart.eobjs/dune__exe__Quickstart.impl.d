examples/quickstart.ml: Array Clock Cts Dsim Format Gcs List Netsim Repl Rpc Scenario
