examples/transaction_ids.mli:
