examples/causal_groups.ml: Array Clock Dsim Format Gcs List Netsim Repl Rpc Scenario
