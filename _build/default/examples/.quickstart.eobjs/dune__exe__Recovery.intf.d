examples/recovery.mli:
