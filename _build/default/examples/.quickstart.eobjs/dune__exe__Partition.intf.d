examples/partition.mli:
