examples/failover.ml: Array Clock Dsim Format Gcs List Netsim Repl Rpc Scenario
