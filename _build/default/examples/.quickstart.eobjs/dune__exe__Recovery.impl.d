examples/recovery.ml: Array Clock Cts Dsim Format Gcs List Netsim Option Repl Rpc Scenario
