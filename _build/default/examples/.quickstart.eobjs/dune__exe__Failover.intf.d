examples/failover.mli:
