examples/quickstart.mli:
