examples/partition.ml: Array Dsim Format Gcs List Netsim Repl Rpc Scenario Totem
