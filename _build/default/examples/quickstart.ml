(* Quickstart: a 3-way actively replicated time server whose replicas have
   wildly different physical clocks, yet agree perfectly on every reading.

   Run with: dune exec examples/quickstart.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Cluster = Scenario.Cluster

let () =
  (* Four simulated hosts: n0 runs the client, n1-n3 the server replicas.
     Give each replica's physical clock a different offset and drift so the
     inconsistency problem is visible. *)
  let clock_config i =
    {
      Clock.Hwclock.default_config with
      offset = Span.of_ms (10 * i);
      drift_ppm = 50. *. float_of_int i;
    }
  in
  let cluster = Cluster.create ~seed:42L ~clock_config ~nodes:4 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  Format.printf "ring formed: 4 nodes operational@.";

  (* A replica per server node.  The app answers "gettimeofday" with the
     *group clock*, transparently interposed by the consistent time
     service. *)
  let config =
    {
      Repl.Replica.default_config with
      initial_members = List.map Netsim.Node_id.of_int [ 1; 2; 3 ];
    }
  in
  let replicas =
    List.map
      (fun node ->
        Repl.Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Scenario.Apps.time_server cluster ~node ())
          ())
      [ 1; 2; 3 ]
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 3);
  Format.printf "server group ready: 3 replicas@.";

  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      Format.printf "@.%-6s %-14s %-12s@." "call" "group clock" "latency";
      for i = 1 to 8 do
        let result, latency =
          Rpc.Client.invoke_timed client ~op:"gettimeofday" ~arg:""
        in
        let t = Time.of_ns (int_of_string result) in
        Format.printf "#%-5d %a   %a@." i Time.pp t Span.pp latency
      done;
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);

  (* Show what each replica's raw physical clock says right now: they are
     milliseconds apart, yet every reading above was identical at all
     three. *)
  Format.printf "@.physical clocks at the end of the run:@.";
  List.iteri
    (fun i _ ->
      let node = i + 1 in
      Format.printf "  replica %d (n%d): %a@." (i + 1) node Time.pp
        (Clock.Hwclock.read cluster.Cluster.nodes.(node).Cluster.clock))
    replicas;
  List.iter
    (fun r ->
      let s = Cts.Service.stats (Repl.Replica.service r) in
      Format.printf
        "  replica on %a: %d rounds, %d CCS sent, %d suppressed, offset %a@."
        Netsim.Node_id.pp
        (Repl.Replica.me r)
        s.Cts.Service.rounds_completed s.Cts.Service.ccs_sent
        s.Cts.Service.suppressed Span.pp
        (Cts.Service.offset (Repl.Replica.service r)))
    replicas;
  Format.printf "@.all readings came from a single consistent group clock.@."
