(* Failover: the paper's central motivation.  A primary/backup time server
   answers clock queries.  When the primary crashes, the prior-work approach
   ([9], [3] in the paper) lets the new primary answer with its own physical
   clock — which can sit *behind* the group's last reading, rolling the
   clock back and breaking causality.  The consistent time service carries a
   per-replica offset, so the group clock stays monotone across failover.

   Run with: dune exec examples/failover.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let run ~offset_tracking =
  (* each backup's physical clock is 200 ms behind its predecessor, far
     more than the failover takes, so the hazard is visible *)
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (-200 * i) }
  in
  let cluster = Cluster.create ~seed:11L ~clock_config ~nodes:4 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  let config =
    {
      Replica.default_config with
      style = Replica.Semi_active;
      offset_tracking;
      initial_members = List.map Netsim.Node_id.of_int [ 1; 2; 3 ];
    }
  in
  let replicas =
    List.map
      (fun node ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Scenario.Apps.time_server cluster ~node ())
          ())
      [ 1; 2; 3 ]
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 3);
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      let prev = ref None in
      let read label =
        let r =
          Rpc.Client.invoke ~timeout:(Span.of_ms 200) client
            ~op:"gettimeofday" ~arg:""
        in
        let v = Time.of_ns (int_of_string r) in
        let verdict =
          match !prev with
          | Some p when Time.(v < p) ->
              Format.asprintf "  <-- ROLLED BACK by %a!" Span.pp
                (Time.diff p v)
          | _ -> ""
        in
        prev := Some v;
        Format.printf "  %-22s %a%s@." label Time.pp v verdict
      in
      read "reading 1";
      read "reading 2";
      let primary = List.find Replica.is_primary replicas in
      Format.printf "  -- crashing the primary (%a) --@." Netsim.Node_id.pp
        (Replica.me primary);
      Replica.crash primary;
      read "reading 3 (new primary)";
      read "reading 4";
      finished := true);
  Cluster.run_until cluster (fun () -> !finished)

let () =
  Format.printf
    "=== prior-work primary/backup clock (paper refs [9],[3]) ===@.";
  run ~offset_tracking:false;
  Format.printf "@.=== consistent time service (this paper) ===@.";
  run ~offset_tracking:true;
  Format.printf
    "@.The group clock is monotone across failover; the baseline is not.@."
