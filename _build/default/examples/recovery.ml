(* Recovery: adding a replica to a running group (paper §3.2).

   Two replicas serve clock-stamped unique identifiers; mid-stream a third
   replica is started.  The infrastructure reaches a quiescent point in the
   agreed order, runs the special round of consistent clock synchronization,
   transfers a checkpoint, and the newcomer joins in — with its clock offset
   initialized from the group clock, so the group clock stays monotone and
   the new replica's state is identical to the others'.

   Run with: dune exec examples/recovery.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let () =
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_ms (5 * i) }
  in
  let cluster =
    Cluster.create ~seed:21L ~clock_config ~nodes:4
      ~bootstrap:(fun i -> i < 3) ()
  in
  List.iter (Cluster.start cluster) [ 0; 1; 2 ];
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2 ]);
  let config =
    {
      Replica.default_config with
      initial_members = [ Nid.of_int 1; Nid.of_int 2 ];
    }
  in
  let make_replica ~recovering node =
    Replica.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
      ~group:cluster.Cluster.server_group
      ~clock:cluster.Cluster.nodes.(node).Cluster.clock
      ~config:{ config with recovering }
      ~app:(Scenario.Apps.time_server cluster ~node ())
      ()
  in
  let r1 = make_replica ~recovering:false 1 in
  let r2 = make_replica ~recovering:false 2 in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 2);
  Format.printf "group running with 2 replicas@.";
  let joiner = ref None in
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      let read i =
        let r = Rpc.Client.invoke client ~op:"uid" ~arg:"" in
        Format.printf "  uid #%d = %s@." i r
      in
      for i = 1 to 4 do
        read i
      done;
      Format.printf "-- starting a third replica on n3 --@.";
      Cluster.start cluster 3;
      joiner := Some (make_replica ~recovering:true 3);
      for i = 5 to 8 do
        read i
      done;
      Dsim.Fiber.sleep cluster.Cluster.eng (Span.of_ms 50);
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);
  let j = Option.get !joiner in
  Format.printf "@.after the join:@.";
  Format.printf "  joiner recovered:          %b@." (Replica.recovered j);
  Format.printf "  joiner clock initialized:  %b@."
    (Cts.Service.initialized (Replica.service j));
  Format.printf "  joiner clock offset:       %a@." Span.pp
    (Cts.Service.offset (Replica.service j));
  Format.printf "  state r1=%s r2=%s joiner=%s  (identical: %b)@."
    (Replica.snapshot r1) (Replica.snapshot r2) (Replica.snapshot j)
    (Replica.snapshot r1 = Replica.snapshot j);
  Format.printf
    "@.The newcomer adopted the group clock through the special CCS round@.\
     and the checkpoint, and now serves identically to the others.@."
