(* Network partition and remerge (paper §2: primary-component model).

   A 5-node system splits into a 3-node majority and a 2-node minority.
   Totem forms a ring per component; the group communication layer marks
   only the component holding a majority of the last primary component as
   primary, so the replicated service keeps running exactly once.  After the
   partition heals, the rings remerge and the whole group resumes.

   Run with: dune exec examples/partition.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let () =
  let cluster = Cluster.create ~seed:5L ~nodes:5 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3; 4 ]);
  let config =
    {
      Replica.default_config with
      initial_members = List.map Nid.of_int [ 1; 2; 3; 4 ];
    }
  in
  let replicas =
    List.map
      (fun node ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Scenario.Apps.time_server cluster ~node ())
          ())
      [ 1; 2; 3; 4 ]
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 4);
  let show_components label =
    Format.printf "%s@." label;
    Array.iter
      (fun (n : Cluster.node) ->
        let totem = Gcs.Endpoint.totem n.Cluster.endpoint in
        Format.printf "  %a: ring=[%a] primary-component=%b@." Nid.pp
          n.Cluster.id
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
             Nid.pp)
          (Totem.Node.members totem)
          (Gcs.Endpoint.is_primary_component n.Cluster.endpoint))
      cluster.Cluster.nodes
  in
  show_components "initial configuration:";
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      let read label =
        let r =
          Rpc.Client.invoke ~timeout:(Span.of_ms 300) client
            ~op:"gettimeofday" ~arg:""
        in
        Format.printf "  %-28s %a@." label Time.pp
          (Time.of_ns (int_of_string r))
      in
      read "reading before partition";
      Format.printf "-- partitioning: {n0,n1,n2} | {n3,n4} --@.";
      Netsim.Network.partition cluster.Cluster.net
        [
          [ Nid.of_int 0; Nid.of_int 1; Nid.of_int 2 ];
          [ Nid.of_int 3; Nid.of_int 4 ];
        ];
      Dsim.Fiber.sleep cluster.Cluster.eng (Span.of_ms 50);
      show_components "during the partition:";
      read "reading in majority side";
      Format.printf "-- healing the partition --@.";
      Netsim.Network.heal cluster.Cluster.net;
      Dsim.Fiber.sleep cluster.Cluster.eng (Span.of_ms 100);
      show_components "after remerge:";
      read "reading after remerge";
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);
  Format.printf "@.replica status after the remerge:@.";
  List.iter
    (fun r ->
      Format.printf "  replica on %a: %s@." Nid.pp (Replica.me r)
        (if Replica.halted r then "HALTED (evicted from primary component)"
         else "serving"))
    replicas;
  Format.printf
    "@.Only the majority component stayed primary during the split; the@.\
     minority replicas were evicted on remerge (their interim state is@.\
     void under the primary-component model) and would rejoin through@.\
     the state-transfer recovery shown in examples/recovery.ml.@."
