(* The paper's motivating use case (§1): the clock value seeds the
   generation of unique identifiers such as transaction identifiers.  With
   raw physical clocks, the replicas of an actively replicated transaction
   manager derive *different* identifiers for the same transaction and
   diverge; with the consistent time service every replica derives the same
   identifier.

   Run with: dune exec examples/transaction_ids.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Cluster = Scenario.Cluster

(* A transaction manager that names each transaction after the clock:
   txn id = "<clock reading us>/<sequence>". *)
let txn_manager ~use_cts ~clock ~log service =
  let seqno = ref 0 in
  {
    Repl.Replica.handle =
      (fun ~thread ~op ~arg ->
        match op with
        | "begin" ->
            incr seqno;
            let stamp =
              if use_cts then Cts.Service.gettimeofday service ~thread
              else Clock.Hwclock.read clock
            in
            let txn = Printf.sprintf "%d/%d" (Time.to_us stamp) !seqno in
            log := txn :: !log;
            txn
        | _ -> arg);
    snapshot = (fun () -> string_of_int !seqno);
    restore = (fun s -> seqno := int_of_string s);
  }

let show ~use_cts =
  (* replica clocks are deliberately skewed by a few hundred microseconds *)
  let clock_config i =
    { Clock.Hwclock.default_config with offset = Span.of_us (137 * i * i) }
  in
  let cluster = Cluster.create ~seed:7L ~clock_config ~nodes:4 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3 ]);
  let config =
    {
      Repl.Replica.default_config with
      initial_members = List.map Netsim.Node_id.of_int [ 1; 2; 3 ];
    }
  in
  let logs = Array.init 4 (fun _ -> ref []) in
  let _replicas =
    List.map
      (fun node ->
        Repl.Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint
          ~group:cluster.Cluster.server_group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:
            (txn_manager ~use_cts
               ~clock:cluster.Cluster.nodes.(node).Cluster.clock
               ~log:logs.(node))
          ())
      [ 1; 2; 3 ]
  in
  let client =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:cluster.Cluster.client_group
      ~server_group:cluster.Cluster.server_group ()
  in
  Cluster.run_until cluster (fun () ->
      List.length
        (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint
           cluster.Cluster.server_group)
      = 3);
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      for _ = 1 to 5 do
        ignore (Rpc.Client.invoke client ~op:"begin" ~arg:"" : string)
      done;
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);
  Format.printf "%-6s %-16s %-16s %-16s %s@." "txn" "replica1" "replica2"
    "replica3" "consistent?";
  let l1 = List.rev !(logs.(1))
  and l2 = List.rev !(logs.(2))
  and l3 = List.rev !(logs.(3)) in
  List.iteri
    (fun i id1 ->
      let id2 = List.nth l2 i and id3 = List.nth l3 i in
      Format.printf "#%-5d %-16s %-16s %-16s %s@." (i + 1) id1 id2 id3
        (if id1 = id2 && id2 = id3 then "yes" else "NO - replicas diverged!"))
    l1

let () =
  Format.printf "=== transaction identifiers from RAW physical clocks ===@.";
  show ~use_cts:false;
  Format.printf
    "@.=== transaction identifiers from the CONSISTENT GROUP CLOCK ===@.";
  show ~use_cts:true;
  Format.printf
    "@.With the consistent time service, every replica derives the same@.\
     transaction identifier and the replicated state stays consistent.@."
