(* Multiple groups of replicas (the paper's §5 conclusion).

   Each group has its own consistent group clock, and the clocks of
   different groups drift apart.  The extension sketched in the paper's
   conclusion — "include the value of the consistent group clock as a
   timestamp in the user messages multicast to the different groups" —
   keeps the clocks causally related: a clock reading that causally follows
   a reading in another group is never smaller.

   Run with: dune exec examples/causal_groups.exe *)

module Time = Dsim.Time
module Span = Dsim.Time.Span
module Nid = Netsim.Node_id
module Gid = Gcs.Group_id
module Cluster = Scenario.Cluster
module Replica = Repl.Replica

let group_a = Gid.of_int 10
let group_b = Gid.of_int 11

let () =
  (* group A's hosts (n1, n2) run 500 ms ahead; group B's (n3, n4) are on
     time, so A's group clock sits far ahead of B's *)
  let clock_config i =
    if i = 1 || i = 2 then
      { Clock.Hwclock.default_config with offset = Span.of_ms 500 }
    else Clock.Hwclock.default_config
  in
  let cluster = Cluster.create ~seed:17L ~clock_config ~nodes:5 () in
  Cluster.start_all cluster;
  Cluster.run_until cluster (fun () ->
      Cluster.ring_stable cluster ~on_nodes:[ 0; 1; 2; 3; 4 ]);
  let mk_replicas group nodes =
    let config =
      { Replica.default_config with initial_members = List.map Nid.of_int nodes }
    in
    List.map
      (fun node ->
        Replica.create cluster.Cluster.eng
          ~endpoint:cluster.Cluster.nodes.(node).Cluster.endpoint ~group
          ~clock:cluster.Cluster.nodes.(node).Cluster.clock ~config
          ~app:(Scenario.Apps.time_server cluster ~node ())
          ())
      nodes
  in
  let _ra = mk_replicas group_a [ 1; 2 ] in
  let _rb = mk_replicas group_b [ 3; 4 ] in
  let client group ~my_group =
    Rpc.Client.create cluster.Cluster.eng
      ~endpoint:cluster.Cluster.nodes.(0).Cluster.endpoint
      ~my_group:(Gid.of_int my_group) ~server_group:group ()
  in
  let client_a = client group_a ~my_group:20 in
  let client_b = client group_b ~my_group:21 in
  Cluster.run_until cluster (fun () ->
      let members g =
        List.length
          (Gcs.Endpoint.members_of cluster.Cluster.nodes.(0).Cluster.endpoint g)
      in
      members group_a = 2 && members group_b = 2);
  let read c =
    Time.of_ns (int_of_string (Rpc.Client.invoke c ~op:"gettimeofday" ~arg:""))
  in
  let finished = ref false in
  Dsim.Fiber.spawn cluster.Cluster.eng (fun () ->
      Format.printf "reading both group clocks independently:@.";
      let ta = read client_a in
      let tb = read client_b in
      Format.printf "  group A clock: %a@." Time.pp ta;
      Format.printf "  group B clock: %a   (%a behind A!)@." Time.pp tb
        Span.pp (Time.diff ta tb);
      Format.printf
        "@.a workflow that reads A and then B would see time run backwards.@.";
      Format.printf
        "@.now carrying A's group clock as a timestamp into the session \
         with B:@.";
      let ta2 = read client_a in
      (match Rpc.Client.last_timestamp client_a with
      | Some ts -> Rpc.Client.observe_timestamp client_b ts
      | None -> assert false);
      let tb2 = read client_b in
      Format.printf "  group A clock: %a@." Time.pp ta2;
      Format.printf "  group B clock: %a   (causally after A: %b)@." Time.pp
        tb2
        Time.(tb2 >= ta2);
      let tb3 = read client_b in
      Format.printf "  group B again: %a   (still monotone: %b)@." Time.pp tb3
        Time.(tb3 >= tb2);
      finished := true);
  Cluster.run_until cluster (fun () -> !finished);
  Format.printf
    "@.The timestamp raised group B's causal floor at every replica, in@.\
     delivery order, so the two group clocks are now causally related@.\
     exactly as the paper's conclusion proposes.@."
